// Package mmbench is an end-to-end benchmark suite for multi-modal DNNs,
// reproducing "MMBench: Benchmarking End-to-End Multi-modal DNNs and
// Understanding Their Hardware-Software Implications" (IISWC 2023) as a
// pure-Go system.
//
// The suite bundles nine multi-modal workloads (Table 3 of the paper), the
// fusion operator catalogue (Table 1), a from-scratch tensor/autograd/NN
// substrate to execute them, an analytic device model for the paper's three
// evaluation platforms (RTX 2080 Ti server, Jetson Nano, Jetson Orin), and
// a profiling pipeline that attributes every modeled GPU kernel to its
// (stage, modality) scope.
//
// Three entry points cover the public API:
//
//   - Run profiles one workload variant on one device and returns the
//     system/architecture report (stage times, kernel breakdowns, stall
//     vectors, memory decomposition, CPU-vs-GPU share);
//   - Train fits a trainable workload variant on planted synthetic data
//     and reports the task metric (the paper's algorithm-level analysis);
//   - Experiment regenerates one of the paper's tables or figures.
package mmbench

import (
	"context"
	"fmt"
	"strings"

	"mmbench/internal/core"
	"mmbench/internal/device"
	"mmbench/internal/faultinject"
	"mmbench/internal/fusion"
	"mmbench/internal/kernels"
	"mmbench/internal/metrics"
	"mmbench/internal/mmnet"
	"mmbench/internal/obs"
	"mmbench/internal/precision"
	"mmbench/internal/report"
	"mmbench/internal/train"
	"mmbench/internal/workloads"
)

// Workload describes one of the nine benchmark applications.
type Workload struct {
	Name       string
	Domain     string
	Task       string
	ModelSize  string
	Modalities []string
	Encoders   string
	// Variants lists every runnable variant: the workload's fusion
	// methods plus one "uni:<modality>" baseline per modality.
	Variants []string
}

// Workloads lists every benchmark application.
func Workloads() []Workload {
	var out []Workload
	for _, name := range workloads.Names() {
		info, err := workloads.Get(name)
		if err != nil {
			continue
		}
		variants, _ := workloads.Variants(name)
		out = append(out, Workload{
			Name:       info.Name,
			Domain:     info.Domain,
			Task:       info.Task.String(),
			ModelSize:  info.ModelSize,
			Modalities: append([]string{}, info.Modalities...),
			Encoders:   info.Encoders,
			Variants:   variants,
		})
	}
	return out
}

// FusionMethods lists the Table 1 fusion operator names.
func FusionMethods() []string { return fusion.Methods() }

// Devices lists the built-in hardware profiles.
func Devices() []string {
	var out []string
	for _, p := range device.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// RunConfig selects what to profile.
type RunConfig struct {
	// Workload and Variant name the network (see Workloads).
	Workload string
	Variant  string
	// Device is "2080ti", "nano" or "orin" (default "2080ti").
	Device string
	// BatchSize defaults to 32.
	BatchSize int
	// PaperScale selects the paper-scale profile flavour (default) as
	// opposed to the small trainable flavour.
	PaperScale bool
	// Eager executes real numerics instead of the dataset-free analytic
	// abstraction.
	Eager bool
	// Seed drives eager-mode data generation.
	Seed int64
	// Precision is the per-stage storage-precision policy in flag
	// syntax, e.g. "f16" or "head=i8,fusion=f16" (see
	// internal/precision.ParsePolicy). Empty means all-float32, the
	// reference path.
	Precision string
}

// StageStat summarizes one execution stage.
type StageStat struct {
	Stage     string
	Seconds   float64
	DRAMUtil  float64
	Occupancy float64
	GldEff    float64
	GstEff    float64
	IPC       float64
}

// MemoryMB is the peak-memory decomposition in mebibytes.
type MemoryMB struct {
	Model        float64
	Dataset      float64
	Intermediate float64
}

// Report is the profiling result of one run.
type Report struct {
	Workload string
	Variant  string
	Device   string
	Batch    int

	// LatencySeconds is the modeled end-to-end latency of one batch,
	// including memory-capacity pressure.
	LatencySeconds  float64
	GPUSeconds      float64
	HostSeconds     float64
	TransferSeconds float64
	// CPUShare is the CPU+Runtime fraction of total busy time.
	CPUShare float64
	Kernels  int

	// Precision is the canonical form of the run's storage-precision
	// policy; empty for the all-float32 default. For eager runs under a
	// non-trivial policy, OutputErrMax/OutputErrMean report the largest
	// and mean absolute output-element error versus a float32 reference
	// forward over the same batch (analytic runs have no numerics, so
	// the fields stay zero).
	Precision     string  `json:",omitempty"`
	OutputErrMax  float64 `json:",omitempty"`
	OutputErrMean float64 `json:",omitempty"`

	Stages []StageStat
	// ModalitySeconds is encoder kernel time per modality.
	ModalitySeconds map[string]float64
	// KernelClassShares maps stage → kernel class name → share of time.
	KernelClassShares map[string]map[string]float64
	// StallShares maps stall reason name → share across all kernels.
	StallShares map[string]float64
	Memory      MemoryMB
}

// Run profiles one workload variant on one device.
func Run(cfg RunConfig) (*Report, error) {
	rep, _, err := runImpl(nil, cfg, nil)
	return rep, err
}

// RunCtx is Run under a cancellable context: cancellation (or a
// deadline) stops the eager engine's chunk dispatch within one chunk
// boundary, aborts the run at its next stage-boundary checkpoint, and
// returns ctx.Err(). A background context behaves exactly like Run.
func RunCtx(ctx context.Context, cfg RunConfig) (*Report, error) {
	rep, _, err := runImpl(ctx, cfg, nil)
	return rep, err
}

// RunProfiled is Run with eager wall-clock profiling: alongside the
// (byte-identical) report it returns the measured per-stage latency in
// milliseconds. Analytic runs execute no kernels, so their stage map is
// nil.
func RunProfiled(cfg RunConfig) (*Report, map[string]float64, error) {
	return RunProfiledCtx(nil, cfg)
}

// RunProfiledCtx is RunProfiled under a cancellable context (see
// RunCtx).
func RunProfiledCtx(ctx context.Context, cfg RunConfig) (*Report, map[string]float64, error) {
	if !cfg.Eager {
		return runImpl(ctx, cfg, nil)
	}
	return runImpl(ctx, cfg, obs.NewProfiler())
}

// RunWithProfiler is Run recording into a caller-owned profiler, for
// callers that also want the span-level profile (the CLI's Chrome trace
// export). The caller seals the profiler with Finish after the run.
func RunWithProfiler(cfg RunConfig, p *obs.Profiler) (*Report, map[string]float64, error) {
	return runImpl(nil, cfg, p)
}

func runImpl(ctx context.Context, cfg RunConfig, prof *obs.Profiler) (*Report, map[string]float64, error) {
	// The runner.run injection site: a "panic" rule here simulates a
	// workload whose kernels reliably crash (the quarantine trigger).
	faultinject.Hit(faultinject.SiteRunner)
	if cfg.Workload == "" {
		return nil, nil, fmt.Errorf("mmbench: RunConfig.Workload is required")
	}
	if cfg.Variant == "" {
		info, err := workloads.Get(cfg.Workload)
		if err != nil {
			return nil, nil, err
		}
		cfg.Variant = info.Fusions[0]
	}
	devName := cfg.Device
	if devName == "" {
		devName = "2080ti"
	}
	dev, err := device.ByName(devName)
	if err != nil {
		return nil, nil, err
	}
	pol, err := precision.ParsePolicy(cfg.Precision)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.BuildAndRun(cfg.Workload, cfg.Variant, cfg.PaperScale, core.RunOptions{
		Device:    dev,
		BatchSize: cfg.BatchSize,
		Eager:     cfg.Eager,
		Seed:      cfg.Seed,
		Precision: pol,
		Profiler:  prof,
		Ctx:       ctx,
	})
	if err != nil {
		return nil, nil, err
	}
	return buildReport(cfg, devName, pol, res), stageMillis(res.StageSeconds), nil
}

// stageMillis converts the runner's per-stage seconds to the
// milliseconds the service and CLI report.
func stageMillis(sec map[string]float64) map[string]float64 {
	if sec == nil {
		return nil
	}
	ms := make(map[string]float64, len(sec))
	for stage, s := range sec {
		ms[stage] = s * 1e3
	}
	return ms
}

func buildReport(cfg RunConfig, devName string, pol precision.Policy, res *core.RunResult) *Report {
	tr := res.Trace
	var polName string
	if !pol.AllF32() {
		// The canonical form only for non-trivial policies, so default
		// reports (and their JSON) are unchanged by precision support.
		polName = pol.String()
	}
	r := &Report{
		Workload:        cfg.Workload,
		Variant:         cfg.Variant,
		Device:          devName,
		Batch:           batchOf(cfg),
		Precision:       polName,
		OutputErrMax:    res.OutputErrMax,
		OutputErrMean:   res.OutputErrMean,
		LatencySeconds:  res.Latency,
		GPUSeconds:      tr.GPUBusy(),
		HostSeconds:     tr.HostBusy,
		TransferSeconds: tr.TransferSeconds,
		CPUShare:        metrics.HostShare(tr),
		Kernels:         len(tr.Kernels),
		ModalitySeconds: metrics.ModalityTimes(tr),
		Memory: MemoryMB{
			Model:        float64(res.Memory.ModelBytes) / (1 << 20),
			Dataset:      float64(res.Memory.DatasetBytes) / (1 << 20),
			Intermediate: float64(res.Memory.IntermediateBytes) / (1 << 20),
		},
	}
	for _, stage := range mmnet.Stages() {
		res := metrics.StageResources(tr)[stage]
		r.Stages = append(r.Stages, StageStat{
			Stage: stage, Seconds: res.Seconds,
			DRAMUtil: res.DRAMUtil, Occupancy: res.Occupancy,
			GldEff: res.GldEff, GstEff: res.GstEff, IPC: res.IPC,
		})
	}
	r.KernelClassShares = make(map[string]map[string]float64)
	for stage, classes := range metrics.ClassShares(tr) {
		if stage == "" {
			continue
		}
		m := make(map[string]float64, len(classes))
		for c, share := range classes {
			m[c.String()] = share
		}
		r.KernelClassShares[stage] = m
	}
	stalls := metrics.StallBreakdown(tr, nil)
	r.StallShares = make(map[string]float64, len(stalls))
	for i, s := range stalls {
		r.StallShares[device.StallReason(i).String()] = s
	}
	return r
}

func batchOf(cfg RunConfig) int {
	if cfg.BatchSize > 0 {
		return cfg.BatchSize
	}
	return 32
}

// String renders a human-readable report summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s on %s (batch %d)\n", r.Workload, r.Variant, r.Device, r.Batch)
	fmt.Fprintf(&b, "  latency %.3f ms | GPU %.3f ms | CPU+Runtime %.1f%% | %d kernels\n",
		r.LatencySeconds*1e3, r.GPUSeconds*1e3, r.CPUShare*100, r.Kernels)
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "  %-8s %.3f ms  dram=%.2f occ=%.2f ipc=%.2f\n",
			s.Stage, s.Seconds*1e3, s.DRAMUtil, s.Occupancy, s.IPC)
	}
	fmt.Fprintf(&b, "  memory MB: model %.1f, dataset %.1f, intermediate %.1f\n",
		r.Memory.Model, r.Memory.Dataset, r.Memory.Intermediate)
	return b.String()
}

// TrainConfig selects and schedules a training run.
type TrainConfig struct {
	Workload string
	Variant  string
	// Epochs/StepsPerEpoch/BatchSize/LR default to the suite schedule.
	Epochs        int
	StepsPerEpoch int
	BatchSize     int
	LR            float64
	Seed          int64
	// Precision is the per-stage storage-precision policy in flag
	// syntax (empty = all-float32). Forward kernels run at the assigned
	// precision; gradients and optimizer state stay float32.
	Precision string
	// Profiler, when non-nil, records wall-clock spans for every
	// training step (kernels, backward, optimizer). Pure observer; the
	// caller seals it with Finish after Train returns.
	Profiler *obs.Profiler
}

// TrainResult reports a trained variant's evaluation.
type TrainResult struct {
	Workload   string
	Variant    string
	MetricName string
	Metric     float64
	FinalLoss  float64
}

// Train fits the trainable flavour of a workload variant on planted
// synthetic data and evaluates the task metric.
func Train(cfg TrainConfig) (*TrainResult, error) {
	if cfg.Workload == "" {
		return nil, fmt.Errorf("mmbench: TrainConfig.Workload is required")
	}
	info, err := workloads.Get(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.Variant == "" {
		cfg.Variant = info.Fusions[0]
	}
	n, err := workloads.Build(cfg.Workload, cfg.Variant, false, 42)
	if err != nil {
		return nil, err
	}
	tcfg := train.DefaultConfig()
	if cfg.Epochs > 0 {
		tcfg.Epochs = cfg.Epochs
	}
	if cfg.StepsPerEpoch > 0 {
		tcfg.StepsPerEpoch = cfg.StepsPerEpoch
	}
	if cfg.BatchSize > 0 {
		tcfg.BatchSize = cfg.BatchSize
	}
	if cfg.LR > 0 {
		tcfg.LR = float32(cfg.LR)
	}
	if cfg.Seed != 0 {
		tcfg.Seed = cfg.Seed
	}
	tcfg.Precision, err = precision.ParsePolicy(cfg.Precision)
	if err != nil {
		return nil, err
	}
	tcfg.Profiler = cfg.Profiler
	res := train.Fit(n, tcfg)
	return &TrainResult{
		Workload:   cfg.Workload,
		Variant:    cfg.Variant,
		MetricName: train.MetricName(info.Task),
		Metric:     res.Metric,
		FinalLoss:  res.FinalLoss,
	}, nil
}

// Table is one experiment result table.
type Table = report.Table

// ExperimentIDs lists the reproducible tables and figures of the paper.
func ExperimentIDs() []string { return core.ExperimentIDs() }

// Experiment regenerates one table or figure of the paper's evaluation.
// quick shrinks training runs and sweeps for smoke testing.
func Experiment(id string, quick bool) ([]*Table, error) {
	cfg := core.DefaultExpConfig()
	cfg.Quick = quick
	return core.RunExperiment(id, cfg)
}

// KernelClasses lists the kernel taxonomy used in reports (the paper's
// Figure 8 categories).
func KernelClasses() []string {
	out := make([]string, 0, kernels.NumClasses)
	for _, c := range kernels.Classes() {
		out = append(out, c.String())
	}
	return out
}
