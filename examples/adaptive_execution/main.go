// Adaptive execution: the strategy the paper's modality analysis motivates
// — since most samples are solvable from the major modality alone (Figure
// 5), run the cheap uni-modal network first and escalate only
// low-confidence samples to the full multi-modal network.
//
// Run with: go run ./examples/adaptive_execution
package main

import (
	"fmt"
	"log"

	"mmbench/internal/adaptive"
	"mmbench/internal/device"
	"mmbench/internal/tensor"
	"mmbench/internal/train"
	"mmbench/internal/workloads"
)

func main() {
	fmt.Println("Adaptive execution on AV-MNIST: uni-modal cascade with")
	fmt.Println("confidence-gated escalation to the multi-modal network.")
	fmt.Println()

	full, err := workloads.Build("avmnist", "concat", false, 42)
	if err != nil {
		log.Fatal(err)
	}
	major, err := workloads.Build("avmnist", "uni:image", false, 42)
	if err != nil {
		log.Fatal(err)
	}
	major.Gen = full.Gen // same data distribution for both networks

	fmt.Println("training both networks...")
	cfg := train.DefaultConfig()
	train.Fit(full, cfg)
	train.Fit(major, cfg)

	fmt.Printf("\n%10s %10s %12s %10s\n", "threshold", "accuracy", "escalated", "cost/full")
	for _, threshold := range []float64{0.5, 0.7, 0.9, 0.99} {
		c, err := adaptive.New(major, full, threshold)
		if err != nil {
			log.Fatal(err)
		}
		res, err := adaptive.Evaluate(c, device.RTX2080Ti(), tensor.NewRNG(7), 4, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.2f %10.3f %11.1f%% %10.2f\n",
			threshold, res.CascadeAccuracy, res.EscalationRate*100, res.CostRatio)
	}

	c, _ := adaptive.New(major, full, 0.9)
	res, err := adaptive.Evaluate(c, device.RTX2080Ti(), tensor.NewRNG(7), 4, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEndpoints: uni-modal %.3f, multi-modal %.3f accuracy.\n",
		res.MajorAccuracy, res.FullAccuracy)
	fmt.Println("The cascade recovers most of the fusion accuracy while skipping")
	fmt.Println("the second encoder and the fusion network for most samples —")
	fmt.Println("the performance-complexity trade-off of the paper's Section 4.2.3.")
}
