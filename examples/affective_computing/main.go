// Affective computing: study CMU-MOSEI sentiment analysis across fusion
// operators — the algorithm-level half of MMBench. Different fusion
// methods reach different accuracy at different system cost, the
// performance/complexity trade-off the paper's Figure 4 motivates.
//
// Run with: go run ./examples/affective_computing
package main

import (
	"fmt"
	"log"

	"mmbench"
)

func main() {
	fmt.Println("CMU-MOSEI sentiment: text + facial + acoustic features")
	fmt.Println()

	// 1. Uni-modal baselines: text carries most of the signal (the
	// paper: "text-based features perform better than visual or auditory
	// modalities in multi-modal language-emotion analysis tasks").
	fmt.Println("Accuracy by variant:")
	variants := []string{"uni:text", "uni:vision", "uni:audio", "concat", "tensor", "transformer"}
	best := ""
	bestAcc := 0.0
	for _, v := range variants {
		res, err := mmbench.Train(mmbench.TrainConfig{Workload: "mosei", Variant: v})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s accuracy = %.3f\n", v, res.Metric)
		if res.Metric > bestAcc {
			bestAcc, best = res.Metric, v
		}
	}
	fmt.Printf("best variant: %s (%.3f)\n\n", best, bestAcc)

	// 2. The system cost of those fusion choices: profile each fusion on
	// the server model and compare the fusion-stage kernel time.
	fmt.Println("Fusion-stage cost on 2080ti (batch 32, paper-scale):")
	for _, v := range []string{"concat", "tensor", "transformer"} {
		rep, err := mmbench.Run(mmbench.RunConfig{
			Workload:   "mosei",
			Variant:    v,
			BatchSize:  32,
			PaperScale: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var fusionMs float64
		for _, s := range rep.Stages {
			if s.Stage == "fusion" {
				fusionMs = s.Seconds * 1e3
			}
		}
		fmt.Printf("  %-12s fusion %.3f ms of %.3f ms total GPU, %d kernels\n",
			v, fusionMs, rep.GPUSeconds*1e3, rep.Kernels)
	}
}
