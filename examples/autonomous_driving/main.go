// Autonomous driving: profile the TransFuser workload (camera + LiDAR,
// transformer fusion, GRU waypoint head) across the cloud and edge
// platforms, then train the small variant to show the fused model predicts
// waypoints far better than a camera-only baseline.
//
// Run with: go run ./examples/autonomous_driving
package main

import (
	"fmt"
	"log"

	"mmbench"
)

func main() {
	fmt.Println("TransFuser: end-to-end driving with camera + LiDAR")
	fmt.Println()

	// 1. Profile the paper-scale network per device. Autonomous driving
	// is latency-critical: the same network is far slower on embedded
	// boards, and on the 4 GB Jetson Nano the model + activations exceed
	// the usable memory pool entirely — the modeled latency explodes
	// into the paging regime, which is the device model's way of saying
	// "does not deploy here".
	fmt.Println("Per-device inference profile (batch 1, paper-scale network):")
	for _, dev := range []string{"2080ti", "orin", "nano"} {
		rep, err := mmbench.Run(mmbench.RunConfig{
			Workload:   "transfuser",
			Variant:    "transformer",
			Device:     dev,
			BatchSize:  1,
			PaperScale: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s latency %8.2f ms  (GPU %7.2f ms, CPU+Runtime %4.1f%%)\n",
			dev, rep.LatencySeconds*1e3, rep.GPUSeconds*1e3, rep.CPUShare*100)
	}
	fmt.Println()

	// 2. Modality imbalance: the LiDAR BEV branch processes a different
	// raw volume than the camera branch, so one encoder straggles — the
	// fusion stage must wait for it (the paper's modality sync problem).
	rep, err := mmbench.Run(mmbench.RunConfig{
		Workload:   "transfuser",
		Variant:    "transformer",
		BatchSize:  8,
		PaperScale: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Encoder time per modality (batch 8, 2080ti):")
	for m, sec := range rep.ModalitySeconds {
		fmt.Printf("  %-6s %.3f ms\n", m, sec*1e3)
	}
	fmt.Println()

	// 3. Train the small variant: waypoint MSE with both sensors vs
	// camera only. Fusing LiDAR halves the error (the planted latent is
	// split across the two sensors).
	fmt.Println("Waypoint prediction MSE (lower is better):")
	for _, variant := range []string{"uni:image", "transformer"} {
		res, err := mmbench.Train(mmbench.TrainConfig{Workload: "transfuser", Variant: variant})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s MSE = %.3f\n", variant, res.Metric)
	}
}
