// Quickstart: list the MMBench workloads, profile one of them on the GPU
// server model, and train its small variant on synthetic data.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"mmbench"
)

func main() {
	// 1. What does the suite contain?
	fmt.Println("MMBench workloads:")
	for _, w := range mmbench.Workloads() {
		fmt.Printf("  %-10s %-22s %-14s modalities: %s\n",
			w.Name, w.Domain, w.Task, strings.Join(w.Modalities, ", "))
	}
	fmt.Println()

	// 2. Profile AV-MNIST with concat fusion on the RTX 2080 Ti model.
	// The profile flavour runs in analytic mode: shapes and kernel costs
	// only, no FP math — MMBench's dataset-free abstraction.
	rep, err := mmbench.Run(mmbench.RunConfig{
		Workload:   "avmnist",
		Variant:    "concat",
		Device:     "2080ti",
		BatchSize:  32,
		PaperScale: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Profile report:")
	fmt.Println(rep)

	// 3. The three-stage structure the paper characterizes: encoders
	// dominate, fusion and head are small.
	enc := rep.Stages[0].Seconds
	total := enc + rep.Stages[1].Seconds + rep.Stages[2].Seconds
	fmt.Printf("Encoder stage share of GPU time: %.1f%%\n\n", 100*enc/total)

	// 4. Train the small flavour: the multi-modal network beats the best
	// uni-modal baseline on the planted synthetic task.
	for _, variant := range []string{"uni:image", "concat"} {
		res, err := mmbench.Train(mmbench.TrainConfig{Workload: "avmnist", Variant: variant})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("train %-10s %s = %.3f\n", variant, res.MetricName, res.Metric)
	}
}
