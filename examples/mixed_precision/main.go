// Mixed precision: sweep AV-MNIST across per-stage precision policies
// and print the accuracy-vs-latency trade-off table.
//
// The walkthrough has two halves:
//
//  1. A *measured* half: train the small AV-MNIST flavour once in f32,
//     then evaluate the same trained weights under each policy — the
//     forward GEMM-family kernels run the emulated f16/i8 paths, so the
//     accuracy column shows what the reduced storage costs the task.
//  2. A *modeled* half: an eager precision sweep on the RTX 2080 Ti
//     profile, whose latency column comes from the analytic device
//     model's precision-scaled kernel costs and whose error column is
//     measured against the f32 reference forward.
//
// Run with: go run ./examples/mixed_precision
package main

import (
	"fmt"
	"log"
	"os"

	"mmbench"
	"mmbench/internal/precision"
	"mmbench/internal/report"
	"mmbench/internal/tensor"
	"mmbench/internal/train"
	"mmbench/internal/workloads"
)

// policies swept, from full precision to everything-int8.
var policies = []string{
	"f32",
	"f16",
	"head=i8,fusion=f16",
	"i8",
}

func main() {
	// 1. Train the small AV-MNIST variant once, in f32 (master weights).
	n, err := workloads.Build("avmnist", "concat", false, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := train.DefaultConfig()
	fmt.Println("training avmnist/concat in f32 ...")
	train.Fit(n, cfg)

	// 2. Evaluate the trained network under each precision policy. Only
	// the forward storage precision changes; the weights are identical.
	acc := report.NewTable("avmnist/concat: accuracy vs storage precision",
		"Policy", "Accuracy", "Δ vs f32")
	var f32Acc float64
	for _, polStr := range policies {
		pol, err := precision.ParsePolicy(polStr)
		if err != nil {
			log.Fatal(err)
		}
		ecfg := cfg
		ecfg.Precision = pol
		res := train.EvaluateWith(n, ecfg, tensor.NewRNG(1234), 8, cfg.BatchSize)
		if polStr == "f32" {
			f32Acc = res.Metric
		}
		acc.AddRow(polStr, fmt.Sprintf("%.3f", res.Metric),
			fmt.Sprintf("%+.3f", res.Metric-f32Acc))
	}
	if err := acc.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 3. The latency side: an eager sweep over the same policies on the
	// 2080 Ti profile. Latency is the analytic model's precision-scaled
	// cost; the error column is measured against the f32 reference.
	tbl, err := mmbench.RunSweep(mmbench.SweepConfig{
		Workload:   "avmnist",
		Variant:    "concat",
		Devices:    []string{"2080ti"},
		Batches:    []int{32},
		Precisions: policies,
		Eager:      true,
		Seed:       7,
	}, mmbench.RunCached, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The same sweep from the CLI:")
	fmt.Println("  mmbench sweep -workload avmnist -devices 2080ti -batches 32 -eager \\")
	fmt.Println("      -precision 'f32;f16;head=i8,fusion=f16;i8'")
}
