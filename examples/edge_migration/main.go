// Edge migration: reproduce the paper's Section 5.2 case study with the
// public API — AV-MNIST inference swept over batch sizes on the GPU server
// and both Jetson boards, showing batching gains on the server, memory-
// capacity inversion on the Nano, and the stall-profile shift on edge
// silicon.
//
// Run with: go run ./examples/edge_migration
package main

import (
	"fmt"
	"log"

	"mmbench"
)

func main() {
	const tasks = 10000

	fmt.Printf("AV-MNIST multi-modal inference, %d tasks total\n\n", tasks)
	fmt.Println("Total time (s) by device and batch size:")
	fmt.Printf("%8s", "batch")
	devices := []string{"2080ti", "orin", "nano"}
	for _, d := range devices {
		fmt.Printf("%10s", d)
	}
	fmt.Println()

	for _, batch := range []int{40, 80, 160, 320} {
		fmt.Printf("%8d", batch)
		for _, dev := range devices {
			rep, err := mmbench.Run(mmbench.RunConfig{
				Workload:   "avmnist",
				Variant:    "concat",
				Device:     dev,
				BatchSize:  batch,
				PaperScale: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			batches := float64((tasks + batch - 1) / batch)
			fmt.Printf("%10.2f", rep.LatencySeconds*batches)
		}
		fmt.Println()
	}
	fmt.Println("\nNote the Nano column: total time stops improving at batch 320 —")
	fmt.Println("the allocator pool of the 4 GB board is exhausted (paper Figure 14).")
	fmt.Println()

	// Stall-profile shift: memory-bound on the server, execution- and
	// instruction-bound on the compute-starved Nano (paper Figure 15).
	fmt.Println("Issue-stall breakdown (share of stall cycles):")
	for _, dev := range []string{"2080ti", "nano"} {
		rep, err := mmbench.Run(mmbench.RunConfig{
			Workload:   "avmnist",
			Variant:    "concat",
			Device:     dev,
			BatchSize:  32,
			PaperScale: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		memSide := rep.StallShares["Cache"] + rep.StallShares["Mem"]
		execSide := rep.StallShares["Exec"] + rep.StallShares["Inst."]
		fmt.Printf("  %-7s memory-side %4.1f%%  exec/instruction-side %4.1f%%\n",
			dev, memSide*100, execSide*100)
	}
}
