#!/usr/bin/env sh
# check_links.sh — verify that every local markdown link in README.md
# and docs/ resolves to an existing file or directory.
#
# Usage: scripts/check_links.sh [files...]
#
# External (http/https/mailto) links and pure #anchors are skipped; the
# check is offline by design so CI never flakes on the network. Links
# are resolved relative to the file that contains them.
set -eu

cd "$(dirname "$0")/.."

files="${*:-}"
if [ -z "$files" ]; then
	files="README.md $(find docs -name '*.md' 2>/dev/null || true)"
fi

status=0
for f in $files; do
	[ -f "$f" ] || { echo "check_links: no such file $f" >&2; status=1; continue; }
	dir="$(dirname "$f")"
	# Extract markdown link targets: [text](target). One per line; inline
	# code and images share the same syntax and are checked alike.
	targets="$(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//' || true)"
	for t in $targets; do
		case "$t" in
		http://*|https://*|mailto:*|\#*) continue ;;
		esac
		# Strip a trailing #anchor from local links.
		path="${t%%#*}"
		[ -n "$path" ] || continue
		if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
			echo "check_links: $f -> broken link: $t" >&2
			status=1
		fi
	done
done

if [ "$status" -eq 0 ]; then
	echo "check_links: all local links resolve"
fi
exit "$status"
