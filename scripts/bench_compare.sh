#!/usr/bin/env sh
# bench_compare.sh — diff two BENCH_ops.json baselines and flag
# regressions.
#
# Usage: scripts/bench_compare.sh BASELINE.json CANDIDATE.json
#
# Prints a per-benchmark table of ns/op ratios (candidate / baseline)
# and exits nonzero when any benchmark present in both files regressed
# by more than THRESHOLD percent (default 10). Benchmarks present in
# only one file are listed but never fail the comparison — renames and
# new benchmarks are not regressions.
#
# Benchmark wall times are machine-dependent: compare files produced on
# the same machine (or the same CI runner class) only.
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 BASELINE.json CANDIDATE.json" >&2
	exit 2
fi
base="$1"
cand="$2"
threshold="${THRESHOLD:-10}"

for f in "$base" "$cand"; do
	if [ ! -f "$f" ]; then
		echo "bench_compare: no such file: $f" >&2
		exit 2
	fi
done

# BENCH_ops.json holds one benchmark object per line, so a line-oriented
# awk pass is a faithful parser for files bench_ops.sh produced.
extract() {
	awk -F'"' '/"name": / {
		name = $4
		line = $0
		sub(/.*"ns_per_op": /, "", line)
		sub(/[,}].*/, "", line)
		printf("%s %s\n", name, line)
	}' "$1"
}

extract "$base" > /tmp/bench_base.$$
extract "$cand" > /tmp/bench_cand.$$
trap 'rm -f /tmp/bench_base.$$ /tmp/bench_cand.$$' EXIT

awk -v threshold="$threshold" '
	NR == FNR { base[$1] = $2; next }
	{ cand[$1] = $2; order[n++] = $1 }
	END {
		printf("%-40s %14s %14s %9s\n", "benchmark", "base ns/op", "cand ns/op", "ratio")
		regressions = 0
		for (i = 0; i < n; i++) {
			name = order[i]
			if (!(name in base)) {
				printf("%-40s %14s %14s %9s\n", name, "-", cand[name], "new")
				continue
			}
			ratio = base[name] > 0 ? cand[name] / base[name] : 1
			flag = ""
			if (ratio > 1 + threshold / 100) {
				flag = "  REGRESSION"
				regressions++
			}
			printf("%-40s %14s %14s %8.3fx%s\n", name, base[name], cand[name], ratio, flag)
			delete base[name]
		}
		for (name in base)
			printf("%-40s %14s %14s %9s\n", name, base[name], "-", "gone")
		if (regressions > 0) {
			printf("\n%d benchmark(s) regressed by more than %s%%\n", regressions, threshold)
			exit 1
		}
	}
' /tmp/bench_base.$$ /tmp/bench_cand.$$
