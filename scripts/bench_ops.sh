#!/usr/bin/env sh
# bench_ops.sh — regenerate BENCH_ops.json, the operator-level perf
# baseline future PRs compare against.
#
# Usage: scripts/bench_ops.sh [output-file]
#
# Runs the kernel benchmarks of internal/ops, internal/engine and
# internal/mmnet with -benchmem and converts `go test` output into a
# stable JSON document. This includes the mixed-precision pair
# (BenchmarkMatMulI8, BenchmarkAttentionF16), which tracks the
# quantize/dequantize overhead of the emulated low-precision kernels
# against their f32 baselines (BenchmarkEngineMatMul,
# BenchmarkAttentionFused), and the BenchmarkMatMulShapes sweep, which
# pins the packed GEMM micro-kernel across square and skinny shapes.
# Benchmark wall times are machine-dependent; the baseline is meant for
# relative comparisons on one machine (e.g. CI runners of the same
# class), not absolute thresholds.
set -eu

out="${1:-BENCH_ops.json}"
cd "$(dirname "$0")/.."

raw="$(go test -run '^$' -bench . -benchmem -benchtime "${BENCHTIME:-1s}" \
	./internal/ops ./internal/engine ./internal/mmnet)"

{
	printf '{\n'
	printf '  "generated_by": "scripts/bench_ops.sh",\n'
	printf '  "generated_at": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "git_sha": "%s",\n' "$(git rev-parse HEAD 2>/dev/null || echo unknown)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)}"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
	printf '  "cpu": "%s",\n' "$(printf '%s\n' "$raw" | awk -F': ' '/^cpu:/{print $2; exit}')"
	printf '  "benchmarks": [\n'
	printf '%s\n' "$raw" | awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, $3, $5, $7)
			if (n++) printf(",\n")
			printf("%s", line)
		}
		END { printf("\n") }
	'
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"
