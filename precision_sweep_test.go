package mmbench

import (
	"strings"
	"testing"
)

// A precision sweep adds the Precision and max-error columns, one row
// per (device, batch, policy), with equivalent policy spellings
// deduplicated into one execution.
func TestSweepPrecisionAxis(t *testing.T) {
	execs := 0
	counting := func(cfg RunConfig) (*Report, error) {
		execs++
		return Run(cfg)
	}
	tbl, err := RunSweep(SweepConfig{
		Workload:   "avmnist",
		Devices:    []string{"2080ti"},
		Batches:    []int{8},
		Precisions: []string{"f32", "f16", "head=i8,fusion=f16", "fusion=f16,head=i8"},
		Eager:      true,
		Seed:       3,
	}, counting, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"Device", "Batch", "Precision", "Latency (ms)", "GPU (ms)", "CPU+Runtime", "Intermediate (MB)", "Max |err| vs f32"}
	if strings.Join(tbl.Columns, "|") != strings.Join(wantCols, "|") {
		t.Fatalf("columns %v, want %v", tbl.Columns, wantCols)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (one per policy)", len(tbl.Rows))
	}
	// The two spellings of head=i8,fusion=f16 share one execution.
	if execs != 3 {
		t.Fatalf("executed %d configs, want 3 after policy dedup", execs)
	}
	byPolicy := map[string][]string{}
	for _, row := range tbl.Rows {
		byPolicy[row[2]] = row
	}
	if row, ok := byPolicy["f32"]; !ok || row[7] != "-" {
		t.Errorf("f32 row missing or has a measured error: %v", row)
	}
	for _, pol := range []string{"encoder=f16,fusion=f16,head=f16", "fusion=f16,head=i8"} {
		row, ok := byPolicy[pol]
		if !ok {
			t.Errorf("no row for canonical policy %q (have %v)", pol, tbl.Rows)
			continue
		}
		if row[7] == "-" || row[7] == "0" {
			t.Errorf("%s: eager sweep should measure a non-zero error, got %q", pol, row[7])
		}
	}
}

// Without Precisions the sweep must keep its historical shape — no new
// columns, one row per (device, batch).
func TestSweepWithoutPrecisionUnchanged(t *testing.T) {
	tbl, err := RunSweep(SweepConfig{
		Workload: "avmnist",
		Devices:  []string{"2080ti"},
		Batches:  []int{8, 16},
	}, Run, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Device", "Batch", "Latency (ms)", "GPU (ms)", "CPU+Runtime", "Intermediate (MB)"}
	if strings.Join(tbl.Columns, "|") != strings.Join(want, "|") {
		t.Fatalf("columns %v, want %v", tbl.Columns, want)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tbl.Rows))
	}
}
