package mmbench

import (
	"context"
	"fmt"

	"mmbench/internal/core"
	"mmbench/internal/device"
	"mmbench/internal/faultinject"
	"mmbench/internal/obs"
	"mmbench/internal/precision"
	"mmbench/internal/workloads"
)

// RunMergedProfiled executes several batch-compatible eager configs as
// ONE merged forward pass and returns each config's own Report, in
// order, plus the measured per-stage wall of the merged forward (shared
// by every member — it is the wall-clock the batch actually paid).
//
// Compatibility means equal BatchFingerprint: same workload, variant,
// device, scale flavour and precision policy, all eager. Per-request
// reports are bitwise identical to running each config alone (see
// core.RunMerged), so the continuous batcher can feed them into the
// result cache transparently.
func RunMergedProfiled(ctx context.Context, cfgs []RunConfig) ([]*Report, map[string]float64, error) {
	// One merged batch is one runner execution: the runner.run fault site
	// fires once, like a standalone run.
	faultinject.Hit(faultinject.SiteRunner)
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("mmbench: RunMergedProfiled needs at least one config")
	}
	base := cfgs[0]
	if base.Workload == "" {
		return nil, nil, fmt.Errorf("mmbench: RunConfig.Workload is required")
	}
	if !base.Eager {
		return nil, nil, fmt.Errorf("mmbench: RunMergedProfiled requires eager configs")
	}
	bfp := base.BatchFingerprint()
	for _, cfg := range cfgs[1:] {
		if !cfg.Eager || cfg.BatchFingerprint() != bfp {
			return nil, nil, fmt.Errorf("mmbench: RunMergedProfiled configs are not batch-compatible")
		}
	}
	if base.Variant == "" {
		info, err := workloads.Get(base.Workload)
		if err != nil {
			return nil, nil, err
		}
		base.Variant = info.Fusions[0]
	}
	devName := base.Device
	if devName == "" {
		devName = "2080ti"
	}
	dev, err := device.ByName(devName)
	if err != nil {
		return nil, nil, err
	}
	pol, err := precision.ParsePolicy(base.Precision)
	if err != nil {
		return nil, nil, err
	}
	n, err := workloads.Build(base.Workload, base.Variant, base.PaperScale, 42)
	if err != nil {
		return nil, nil, err
	}
	members := make([]core.MemberSpec, len(cfgs))
	for i, cfg := range cfgs {
		members[i] = core.MemberSpec{BatchSize: cfg.BatchSize, Seed: cfg.Seed}
	}
	// Merged forwards are profiled unconditionally, like every eager
	// execution through the cached runner.
	prof := obs.NewProfiler()
	results, err := core.RunMerged(n, core.RunOptions{
		Device:    dev,
		Eager:     true,
		Precision: pol,
		Profiler:  prof,
		Ctx:       ctx,
	}, members)
	if err != nil {
		return nil, nil, err
	}
	reps := make([]*Report, len(cfgs))
	for i, res := range results {
		cfg := cfgs[i]
		cfg.Variant = base.Variant
		reps[i] = buildReport(cfg, devName, pol, res)
	}
	return reps, stageMillis(results[0].StageSeconds), nil
}
