package mmbench

import (
	"sync"
	"testing"
)

func TestCacheKeyCanonicalization(t *testing.T) {
	cases := []struct {
		name string
		a, b RunConfig
		same bool
	}{
		{
			name: "defaults resolve to explicit values",
			a:    RunConfig{Workload: "avmnist"},
			b:    RunConfig{Workload: "avmnist", Variant: "concat", Device: "2080ti", BatchSize: 32},
			same: true,
		},
		{
			name: "seed ignored in analytic mode",
			a:    RunConfig{Workload: "avmnist", Seed: 7},
			b:    RunConfig{Workload: "avmnist", Seed: 99},
			same: true,
		},
		{
			name: "eager default seed equals explicit 1",
			a:    RunConfig{Workload: "avmnist", Eager: true},
			b:    RunConfig{Workload: "avmnist", Eager: true, Seed: 1},
			same: true,
		},
		{
			name: "eager seed matters",
			a:    RunConfig{Workload: "avmnist", Eager: true, Seed: 1},
			b:    RunConfig{Workload: "avmnist", Eager: true, Seed: 2},
			same: false,
		},
		{
			name: "batch matters",
			a:    RunConfig{Workload: "avmnist", BatchSize: 32},
			b:    RunConfig{Workload: "avmnist", BatchSize: 64},
			same: false,
		},
		{
			name: "device matters",
			a:    RunConfig{Workload: "avmnist", Device: "nano"},
			b:    RunConfig{Workload: "avmnist", Device: "orin"},
			same: false,
		},
		{
			name: "paper scale matters",
			a:    RunConfig{Workload: "avmnist", PaperScale: true},
			b:    RunConfig{Workload: "avmnist"},
			same: false,
		},
		{
			name: "variant matters",
			a:    RunConfig{Workload: "avmnist", Variant: "sum"},
			b:    RunConfig{Workload: "avmnist", Variant: "tensor"},
			same: false,
		},
		{
			name: "all-f32 precision spellings share the legacy key",
			a:    RunConfig{Workload: "avmnist"},
			b:    RunConfig{Workload: "avmnist", Precision: "head=f32,fusion=f32"},
			same: true,
		},
		{
			name: "explicit f32 equals empty precision",
			a:    RunConfig{Workload: "avmnist", Precision: "f32"},
			b:    RunConfig{Workload: "avmnist"},
			same: true,
		},
		{
			name: "precision matters",
			a:    RunConfig{Workload: "avmnist", Precision: "head=i8"},
			b:    RunConfig{Workload: "avmnist"},
			same: false,
		},
		{
			name: "equivalent policies canonicalize to one key",
			a:    RunConfig{Workload: "avmnist", Precision: "head=i8,fusion=f16"},
			b:    RunConfig{Workload: "avmnist", Precision: "fusion=f16, head=i8"},
			same: true,
		},
		{
			name: "different policies get different keys",
			a:    RunConfig{Workload: "avmnist", Precision: "head=i8"},
			b:    RunConfig{Workload: "avmnist", Precision: "head=f16"},
			same: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := tc.a.cacheKey(), tc.b.cacheKey()
			if (ka == kb) != tc.same {
				t.Fatalf("cacheKey(%+v) = %q vs cacheKey(%+v) = %q; want same=%v",
					tc.a, ka, tc.b, kb, tc.same)
			}
		})
	}
}

func TestCachedRunnerDedupes(t *testing.T) {
	cr := NewCachedRunner(16 << 20)
	cfg := RunConfig{Workload: "avmnist", PaperScale: true, BatchSize: 8}

	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 32
	var wg sync.WaitGroup
	reports := make([]*Report, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix equivalent spellings of the same config.
			c := cfg
			if i%2 == 0 {
				c.Variant = "concat"
				c.Device = "2080ti"
			}
			rep, err := cr.Run(c)
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = rep
		}(i)
	}
	wg.Wait()

	s := cr.Stats()
	if s.Executions != 1 {
		t.Fatalf("%d executions for %d equivalent requests, want 1 (stats %+v)", s.Executions, callers, s)
	}
	for i, rep := range reports {
		if rep == nil {
			t.Fatalf("caller %d got nil report", i)
		}
		if rep.LatencySeconds != want.LatencySeconds || rep.Kernels != want.Kernels {
			t.Fatalf("cached report diverges from direct Run: %+v vs %+v", rep, want)
		}
	}
}

func TestCachedRunnerErrorsPropagate(t *testing.T) {
	cr := NewCachedRunner(1 << 20)
	if _, err := cr.Run(RunConfig{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	s := cr.Stats()
	if s.Entries != 0 {
		t.Fatalf("error cached: %+v", s)
	}
}
