package mmbench

import (
	"context"
	"encoding/json"
	"strconv"

	"mmbench/internal/precision"
	"mmbench/internal/resultcache"
	"mmbench/internal/workloads"
)

// CachedRunner wraps Run with a config-keyed result cache. Analytic
// profiling is a pure function of RunConfig, so equal configs (after
// default resolution) always return the same Report; the runner serves
// repeats from memory and coalesces concurrent identical requests into
// a single underlying execution. Reports handed out by a CachedRunner
// are shared — callers must not mutate them.
type CachedRunner struct {
	cache *resultcache.Cache
}

// NewCachedRunner builds a runner whose cache holds about
// capacityBytes of reports (LRU-evicted beyond that).
func NewCachedRunner(capacityBytes int64) *CachedRunner {
	return &CachedRunner{cache: resultcache.New(capacityBytes)}
}

// cachedRun is a cache entry: the report plus the per-stage wall-clock
// milliseconds measured when the entry was produced (nil for analytic
// runs). Caching them together keeps Run and RunProfiled on one cache
// key — profiling is a pure observer, so it never forks entries.
type cachedRun struct {
	rep     *Report
	stageMs map[string]float64
}

// Run is the cached equivalent of the package-level Run.
func (cr *CachedRunner) Run(cfg RunConfig) (*Report, error) {
	v, err := cr.do(nil, cfg, nil)
	if err != nil {
		return nil, err
	}
	return v.rep, nil
}

// RunCtx is Run under a cancellable context. A cancelled execution
// returns ctx.Err() and is never cached: the failure belongs to the
// cancelled request, and concurrent requests coalesced onto it retry
// with their own context instead of inheriting the error.
func (cr *CachedRunner) RunCtx(ctx context.Context, cfg RunConfig) (*Report, error) {
	v, err := cr.do(ctx, cfg, nil)
	if err != nil {
		return nil, err
	}
	return v.rep, nil
}

// RunProfiled is the cached equivalent of the package-level
// RunProfiled. Cache hits return the stage latencies measured when the
// entry was executed; only real executions observe into the
// process-wide stage histograms, so hits never skew the distributions.
func (cr *CachedRunner) RunProfiled(cfg RunConfig) (*Report, map[string]float64, error) {
	v, err := cr.do(nil, cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	return v.rep, v.stageMs, nil
}

// RunProfiledCtx is RunProfiled under a cancellable context (see
// RunCtx).
func (cr *CachedRunner) RunProfiledCtx(ctx context.Context, cfg RunConfig) (*Report, map[string]float64, error) {
	v, err := cr.do(ctx, cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	return v.rep, v.stageMs, nil
}

// ComputeFn is one real (cache-missing) profile execution, run under
// ctx. It is the unit an execution wrapper (RunProfiledCtxVia) may
// reschedule; the returned value is the opaque cache entry.
type ComputeFn func(ctx context.Context) (any, error)

// RunProfiledCtxVia is RunProfiledCtx with an execution wrapper: via
// receives the real computation and decides how (and whether) to run
// it — the serve layer routes it through scheduler admission control.
// Cache hits and coalesced waiters never invoke via, so repeated or
// concurrent identical requests cost one admission and one execution
// no matter how many clients ask. via must either return compute's
// result unchanged or an error; errors (including shed admissions) are
// never cached and never shared with coalesced waiters.
func (cr *CachedRunner) RunProfiledCtxVia(ctx context.Context, cfg RunConfig, via func(compute ComputeFn) (any, error)) (*Report, map[string]float64, error) {
	v, err := cr.do(ctx, cfg, via)
	if err != nil {
		return nil, nil, err
	}
	return v.rep, v.stageMs, nil
}

// ExecFn replaces the underlying computation of one cache-missing run:
// instead of the default RunProfiledCtx, the cache entry comes from
// exec's result. The continuous batcher rides this — a cache miss is
// handed to the batcher, which may merge it with other pending misses
// into one forward; the scattered per-request report then lands in the
// cache exactly as a standalone execution's would (the bitwise-identity
// contract makes the two indistinguishable).
type ExecFn func(ctx context.Context, cfg RunConfig) (*Report, map[string]float64, error)

// RunProfiledCtxThrough is RunProfiledCtx with the computation replaced
// by exec on cache miss. Cache hits and coalesced identical requests
// never invoke exec, so the layering is: identical configs coalesce in
// the cache ABOVE the batcher, and distinct-but-compatible configs merge
// in the batcher BELOW it. Errors are never cached.
func (cr *CachedRunner) RunProfiledCtxThrough(ctx context.Context, cfg RunConfig, exec ExecFn) (*Report, map[string]float64, error) {
	v, err := cr.cache.Do(cfg.cacheKey(), func() (any, int64, error) {
		rep, stageMs, err := exec(ctx, cfg)
		if err != nil {
			return nil, 0, err
		}
		cv := &cachedRun{rep: rep, stageMs: stageMs}
		return cv, reportBytes(rep), nil
	})
	if err != nil {
		return nil, nil, err
	}
	cv := v.(*cachedRun)
	return cv.rep, cv.stageMs, nil
}

func (cr *CachedRunner) do(ctx context.Context, cfg RunConfig, via func(ComputeFn) (any, error)) (*cachedRun, error) {
	compute := func(cctx context.Context) (any, error) {
		// Eager executions are profiled unconditionally (the profiler is
		// a pure observer), so every real run — sweeps included — feeds
		// the per-stage latency histograms behind /metrics.
		rep, stageMs, err := RunProfiledCtx(cctx, cfg)
		if err != nil {
			return nil, err
		}
		return &cachedRun{rep: rep, stageMs: stageMs}, nil
	}
	v, err := cr.cache.Do(cfg.cacheKey(), func() (any, int64, error) {
		var v any
		var err error
		if via != nil {
			v, err = via(compute)
		} else {
			v, err = compute(ctx)
		}
		if err != nil {
			return nil, 0, err
		}
		return v, reportBytes(v.(*cachedRun).rep), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cachedRun), nil
}

// Stats snapshots the cache counters (hits, misses, executions,
// coalesced requests, evictions, resident bytes).
func (cr *CachedRunner) Stats() resultcache.Stats { return cr.cache.Stats() }

// reportBytes estimates a report's resident size for the cache budget
// by its JSON encoding — close enough for an LRU byte budget.
func reportBytes(r *Report) int64 {
	b, err := json.Marshal(r)
	if err != nil {
		return 1 << 10
	}
	return int64(len(b))
}

// cacheKey canonicalizes the config: defaults are resolved first so
// that, e.g., an empty Device and an explicit "2080ti" share one cache
// entry, and the seed is ignored unless eager mode actually uses it.
func (cfg RunConfig) cacheKey() string {
	return resultcache.Key(cfg.canonicalFields(true))
}

// Fingerprint canonicalizes the config's workload identity — the cache
// key minus the seed — so failure tracking (the serve layer's panic
// quarantine) groups every run of one workload configuration together
// regardless of which data seed happened to trigger the fault.
func (cfg RunConfig) Fingerprint() string {
	return resultcache.Key(cfg.canonicalFields(false))
}

// BatchFingerprint canonicalizes the config's *batchable* identity: the
// fingerprint minus batch size (and seed). Two eager configs with equal
// batch fingerprints may execute as one merged cross-request forward —
// everything that shapes the computation graph or its numerics
// (workload, variant, device, scale flavour, precision policy) matches;
// only the data (seed) and the sample count differ, which is exactly
// what RunMergedProfiled concatenates over.
func (cfg RunConfig) BatchFingerprint() string {
	m := cfg.canonicalFields(false)
	delete(m, "batch")
	return resultcache.Key(m)
}

func (cfg RunConfig) canonicalFields(includeSeed bool) map[string]string {
	norm := cfg
	if norm.Device == "" {
		norm.Device = "2080ti"
	}
	if norm.BatchSize <= 0 {
		norm.BatchSize = 32
	}
	if norm.Variant == "" {
		if info, err := workloads.Get(norm.Workload); err == nil {
			norm.Variant = info.Fusions[0]
		}
	}
	if !norm.Eager {
		norm.Seed = 0
	} else if norm.Seed == 0 {
		norm.Seed = 1 // core.RunOptions defaults the eager seed to 1
	}
	m := map[string]string{
		"workload": norm.Workload,
		"variant":  norm.Variant,
		"device":   norm.Device,
		"batch":    strconv.Itoa(norm.BatchSize),
		"paper":    strconv.FormatBool(norm.PaperScale),
		"eager":    strconv.FormatBool(norm.Eager),
	}
	if includeSeed {
		m["seed"] = strconv.FormatInt(norm.Seed, 10)
	}
	// Precision changes results (numerics in eager mode, modeled kernel
	// costs in analytic mode), so non-trivial policies key the cache by
	// their canonical form. All spellings of all-f32 — empty, "f32", or
	// explicit f32 assignments — share the pre-mixed-precision key.
	if pol, err := precision.ParsePolicy(norm.Precision); err == nil && !pol.AllF32() {
		m["precision"] = pol.String()
	} else if err != nil {
		// Unparseable policies never execute (Run rejects them); give
		// them a unique key so the error is not cached under f32.
		m["precision"] = "invalid:" + norm.Precision
	}
	return m
}

// defaultRunner backs the package-level cached entry point.
var defaultRunner = NewCachedRunner(64 << 20)

// RunCached profiles through a shared process-wide cache: repeated or
// concurrent identical configs cost one execution. The returned Report
// is shared and must not be mutated; use Run for a private copy.
func RunCached(cfg RunConfig) (*Report, error) { return defaultRunner.Run(cfg) }

// RunCacheStats snapshots the shared cache's counters.
func RunCacheStats() resultcache.Stats { return defaultRunner.Stats() }
