package main

import (
	"runtime"
	"testing"
)

// TestComputeWorkerBudget pins the auto-split contract, including the
// regression where more job workers than CPUs floored the division to
// 0 — which engine.New interprets as "auto = full GOMAXPROCS" per job,
// the exact oversubscription the auto mode exists to prevent.
func TestComputeWorkerBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name                  string
		requested, jobWorkers int
		want                  int
	}{
		{"explicit request wins", 3, 64, 3},
		{"single job gets everything", 0, 1, procs},
		{"split across jobs", 0, 2, max(1, procs/2)},
		{"more jobs than CPUs clamps to 1", 0, procs + 1, 1},
		{"way more jobs than CPUs clamps to 1", 0, 16 * procs, 1},
		{"zero job workers treated as one", 0, 0, procs},
		{"negative job workers treated as one", 0, -4, procs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := computeWorkerBudget(tc.requested, tc.jobWorkers)
			if got != tc.want {
				t.Fatalf("computeWorkerBudget(%d, %d) = %d, want %d",
					tc.requested, tc.jobWorkers, got, tc.want)
			}
			if got < 1 {
				t.Fatalf("budget %d below 1: engine would fall back to full GOMAXPROCS", got)
			}
		})
	}
}
