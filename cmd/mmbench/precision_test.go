package main

import "testing"

func TestParsePrecisions(t *testing.T) {
	cases := []struct {
		name, in string
		want     []string
		wantErr  bool
	}{
		{name: "empty", in: "", want: nil},
		{name: "whitespace only", in: "  ", want: nil},
		{name: "single policy", in: "f16", want: []string{"f16"}},
		{name: "policies with commas split on semicolons", in: "f32;f16;head=i8,fusion=f16",
			want: []string{"f32", "f16", "head=i8,fusion=f16"}},
		{name: "whitespace trimmed", in: " f16 ; i8 ", want: []string{"f16", "i8"}},
		{name: "per-modality", in: "encoder:audio=i8", want: []string{"encoder:audio=i8"}},
		{name: "bad precision", in: "f16;head=f64", wantErr: true},
		{name: "bad stage", in: "decoder=f16", wantErr: true},
		{name: "comma used as list separator", in: "f16,i8", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parsePrecisions(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parsePrecisions(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parsePrecisions(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsePrecisions(%q) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("parsePrecisions(%q) = %v, want %v", tc.in, got, tc.want)
				}
			}
		})
	}
}

func TestValidatePrecision(t *testing.T) {
	if err := validatePrecision(""); err != nil {
		t.Errorf("empty policy rejected: %v", err)
	}
	if err := validatePrecision("head=i8,fusion=f16"); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := validatePrecision("head=q4"); err == nil {
		t.Error("bad policy accepted")
	}
}
