package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mmbench/internal/faultinject"
	"mmbench/internal/serve"
)

// cmdServe runs the benchmark service: the JSON API over the cached
// runner and the worker-pool scheduler.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", runtime.NumCPU(), "scheduler worker count")
	cacheMB := fs.Int("cache-mb", 64, "result cache budget in MiB")
	computeWorkers := computeWorkersFlag(fs)
	unfusedAttn := unfusedAttentionFlag(fs)
	branchPar := branchParallelFlag(fs)
	precPolicy := precisionFlag(fs)
	pprofFlag := fs.Bool("pprof", false,
		"mount net/http/pprof under /debug/pprof/ (CPU/heap/goroutine profiles; off by default)")
	deadline := fs.Duration("deadline", 0,
		"default completion deadline for /v1/run requests (0 = none); clients may lower it per request via X-Deadline-Ms, never raise it")
	quarThreshold := fs.Int("quarantine-threshold", 3,
		"panics per workload-config fingerprint before the config is quarantined (422)")
	maxBatch := fs.Int("max-batch", 256,
		"continuous batching: max samples one merged cross-request forward may carry (0 = default, negative = disable batching)")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond,
		"continuous batching: how long the first eager request on an idle queue waits for compatible requests to join")
	faults := fs.String("faults", "",
		"fault-injection plan, e.g. 'engine.chunk=panic/every=100,jobs.admit=fail/every=10' (testing only; also settable via MMBENCH_FAULTS)")
	writeTimeout := fs.Duration("write-timeout", 5*time.Minute,
		"HTTP write deadline per request; must cover the longest synchronous /v1/run (long eager runs should go through /v1/sweep jobs instead)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validatePrecision(*precPolicy); err != nil {
		return err
	}
	configureAttention(*unfusedAttn)
	configureBranches(*branchPar)
	// Job workers and kernel workers share one CPU budget: with W
	// scheduler workers the auto setting gives each eager run
	// GOMAXPROCS/W compute workers (split further across encoder
	// branches when -branch-parallel is on).
	configureCompute(*computeWorkers, *workers)

	if *faults != "" {
		if err := faultinject.Configure(*faults); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mmbench: FAULT INJECTION ENABLED: %s\n", *faults)
	}

	s := serve.New(serve.Options{
		Workers:             *workers,
		CacheBytes:          int64(*cacheMB) << 20,
		DefaultPrecision:    *precPolicy,
		Pprof:               *pprofFlag,
		DefaultDeadline:     *deadline,
		QuarantineThreshold: *quarThreshold,
		MaxBatch:            *maxBatch,
		BatchWindow:         *batchWindow,
	})
	// Slow or stalled clients must not pin handler goroutines forever:
	// bound header/body reads and idle keep-alives tightly. The write
	// deadline starts when the request is read, so it must cover a
	// synchronous eager run's whole compute time — it is a flag because
	// the right bound depends on the machine and workload scale.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mmbench: serving on http://%s (%d workers, %d MiB cache)\n",
		*addr, *workers, *cacheMB)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mmbench: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return s.Close(shutdownCtx)
}
