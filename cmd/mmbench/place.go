package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mmbench"
	"mmbench/internal/place"
	"mmbench/internal/report"
)

// cmdPlace searches stage→device placements of one workload's compiled
// stage plan across the built-in heterogeneous fleet and reports the
// latency/energy/error frontier — where each encoder, the fusion join
// and the head should run (and at which precision) under a latency SLO.
func cmdPlace(args []string) error {
	fs := flag.NewFlagSet("place", flag.ExitOnError)
	workload := fs.String("workload", "avmnist", "workload name (see list)")
	variant := fs.String("variant", "", "fusion method or uni:<modality> (default: workload's first fusion)")
	batch := fs.Int("batch", 32, "batch size")
	paper := fs.Bool("paper", true, "use the paper-scale profile flavour")
	sloMs := fs.Float64("slo-ms", 0, "latency SLO in milliseconds (0 = unconstrained)")
	precisions := fs.String("precisions", "f32,f16,i8",
		"comma-separated storage precisions the planner may assign per stage")
	top := fs.Int("top", 8, "frontier rows to report")
	format := fs.String("format", "text", "output format: text, csv or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var precList []string
	for _, p := range strings.Split(*precisions, ",") {
		if p = strings.TrimSpace(p); p != "" {
			precList = append(precList, p)
		}
	}
	rep, err := mmbench.Place(mmbench.PlaceConfig{
		Workload:   *workload,
		Variant:    *variant,
		Batch:      *batch,
		Paper:      paper,
		SLOMs:      *sloMs,
		Precisions: precList,
		Top:        *top,
	})
	if err != nil {
		return err
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return report.Render(os.Stdout, *format, placeTables(rep)...)
}

// placeTables renders a placement report as the CLI's table set.
func placeTables(rep *mmbench.PlaceReport) []*report.Table {
	planT := report.NewTable(
		fmt.Sprintf("Stage plan: %s (batch %d)", rep.Network, rep.Batch),
		"Node", "Kernels", "GFLOPs", "Param MB", "Out KB")
	for _, n := range rep.Nodes {
		planT.AddRow(n.Key, fmt.Sprint(n.Kernels),
			fmt.Sprintf("%.3f", float64(n.FLOPs)/1e9),
			fmt.Sprintf("%.2f", float64(n.ParamBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(n.OutBytes)/(1<<10)))
	}

	baseT := report.NewTable("Single-device baselines (f32)",
		"Device", "Latency (ms)", "Energy (mJ)", "Slowest stage", "Stage imbalance")
	for _, b := range rep.Baselines {
		key, imb := stageImbalance(b)
		baseT.AddRow(b.Stages[0].Device,
			fmt.Sprintf("%.3f", b.LatencyMs),
			fmt.Sprintf("%.1f", b.EnergyMJ),
			key, fmt.Sprintf("%.1fx", imb))
	}

	title := "Placement frontier"
	if rep.SLOMs > 0 {
		title = fmt.Sprintf("Placement frontier (SLO %.1f ms, %d/%d feasible)",
			rep.SLOMs, rep.Feasible, rep.Evaluated)
	}
	frontT := report.NewTable(title,
		"Latency (ms)", "Energy (mJ)", "Err bound", "Placement")
	for _, c := range rep.Frontier {
		frontT.AddRow(
			fmt.Sprintf("%.3f", c.LatencyMs),
			fmt.Sprintf("%.1f", c.EnergyMJ),
			fmt.Sprintf("%.3f", c.ErrBound),
			placementString(c))
	}
	tables := []*report.Table{planT, baseT, frontT}

	if len(rep.Frontier) > 0 {
		best := rep.Frontier[0]
		bestT := report.NewTable(
			fmt.Sprintf("Best placement breakdown (%.3f ms)", best.LatencyMs),
			"Stage", "Device", "Precision", "Stage (ms)", "Edge KB", "Edge (ms)", "Edge to")
		for _, s := range best.Stages {
			edgeTo := s.EdgeTo
			if edgeTo == "" {
				edgeTo = "-"
			}
			bestT.AddRow(s.Stage, s.Device, s.Precision.String(),
				fmt.Sprintf("%.3f", s.Ms),
				fmt.Sprintf("%.1f", float64(s.EdgeBytes)/(1<<10)),
				fmt.Sprintf("%.3f", s.EdgeMs), edgeTo)
		}
		tables = append(tables, bestT)
	}
	return tables
}

// stageImbalance names the slowest stage of a single-device placement
// and its time relative to the mean stage time — the paper's
// stage-imbalance observation in one number.
func stageImbalance(c place.Candidate) (string, float64) {
	var maxMs, sum float64
	key := ""
	for _, s := range c.Stages {
		sum += s.Ms
		if s.Ms > maxMs {
			maxMs, key = s.Ms, s.Stage
		}
	}
	if sum == 0 || len(c.Stages) == 0 {
		return key, 1
	}
	return key, maxMs / (sum / float64(len(c.Stages)))
}

// placementString compacts a placement into "stage=device/prec ..."
// in stage order.
func placementString(c place.Candidate) string {
	parts := make([]string, 0, len(c.Stages))
	for _, s := range c.Stages {
		parts = append(parts, s.Stage+"="+s.Device+"/"+s.Precision.String())
	}
	return strings.Join(parts, " ")
}
