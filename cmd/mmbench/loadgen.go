package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"mmbench/internal/loadgen"
)

// cmdLoadgen drives a live mmbench serve instance with a seeded arrival
// process and prints the latency/throughput report the batching knobs
// are tuned against.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of a running mmbench serve")
	workload := fs.String("workload", "avmnist", "workload name to request")
	variant := fs.String("variant", "", "fusion method or uni:<modality> (default: workload's first fusion)")
	batch := fs.Int("batch", 2, "batch size per request")
	eager := fs.Bool("eager", true, "request eager execution (only eager requests are batchable server-side)")
	paper := fs.Bool("paper", true, "use the paper-scale profile flavour")
	precPolicy := precisionFlag(fs)
	mode := fs.String("mode", loadgen.ModeOpen, "open (arrival-paced) or closed (fixed-concurrency) loop")
	qps := fs.Float64("qps", 20, "open-loop target arrival rate")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	concurrency := fs.Int("concurrency", 4, "closed-loop worker count")
	seed := fs.Uint64("seed", 1, "arrival-process seed; also the base of per-request workload seeds")
	arrival := fs.String("arrival", loadgen.ArrivalPoisson, "open-loop arrival process: poisson or uniform")
	deadlineMs := fs.Int("deadline-ms", 0, "per-request X-Deadline-Ms header (0 = none)")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validatePrecision(*precPolicy); err != nil {
		return err
	}

	cfg := loadgen.Config{
		Mode:        *mode,
		QPS:         *qps,
		Duration:    *duration,
		Concurrency: *concurrency,
		Seed:        *seed,
		Arrival:     *arrival,
	}
	target := httpRunTarget(runTargetOptions{
		url:        *url,
		workload:   *workload,
		variant:    *variant,
		batch:      *batch,
		eager:      *eager,
		paper:      *paper,
		precision:  *precPolicy,
		seedBase:   int64(*seed),
		deadlineMs: *deadlineMs,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := loadgen.Run(ctx, cfg, target)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Print(rep.Table())
	return nil
}

type runTargetOptions struct {
	url        string
	workload   string
	variant    string
	batch      int
	eager      bool
	paper      bool
	precision  string
	seedBase   int64
	deadlineMs int
}

// httpRunTarget builds the loadgen target that POSTs /v1/run. Each
// request carries a distinct seed (seedBase+i): identical configs would
// all hit the server's result cache after the first, and the batcher —
// the thing being measured — would never see a merge.
func httpRunTarget(o runTargetOptions) loadgen.Target {
	client := &http.Client{}
	endpoint := o.url + "/v1/run"
	return func(ctx context.Context, i int) error {
		body, err := json.Marshal(map[string]any{
			"workload":    o.workload,
			"variant":     o.variant,
			"batch":       o.batch,
			"eager":       o.eager,
			"paper_scale": o.paper,
			"precision":   o.precision,
			"seed":        o.seedBase + int64(i),
		})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if o.deadlineMs > 0 {
			req.Header.Set("X-Deadline-Ms", strconv.Itoa(o.deadlineMs))
		}
		resp, err := client.Do(req)
		if err != nil {
			// Strip the per-request seed from transport errors so the
			// report's error breakdown aggregates instead of exploding
			// into one bucket per request.
			return fmt.Errorf("transport: %w", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
}
