package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"mmbench"
	"mmbench/internal/jobs"
	"mmbench/internal/report"
)

// cmdSweep profiles one workload variant across batch sizes and devices,
// emitting one row per configuration — the tuning-knob exploration the
// paper's Section 5 case studies are built from. Configurations run in
// parallel across a worker pool with cached deduplication; row order is
// deterministic regardless of worker count.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workload := fs.String("workload", "avmnist", "workload name")
	variant := fs.String("variant", "", "fusion method or uni:<modality>")
	devices := fs.String("devices", "2080ti,orin,nano", "comma-separated device list")
	batches := fs.String("batches", "32,64,128,256", "comma-separated batch sizes")
	tasks := fs.Int("tasks", 0, "if > 0, also report total time for this many inference tasks")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel profiling workers (1 = sequential)")
	format := fs.String("format", "text", "output format: text, csv or json")
	precisions := fs.String("precision", "",
		"semicolon-separated precision policies to sweep (each in -precision syntax, e.g. 'f32;f16;head=i8,fusion=f16'); adds Precision and max-error columns")
	eager := fs.Bool("eager", false, "execute real numerics (measures the precision error column instead of leaving it modeled)")
	seed := fs.Int64("seed", 0, "eager-mode data seed (0 = suite default)")
	computeWorkers := computeWorkersFlag(fs)
	unfusedAttn := unfusedAttentionFlag(fs)
	branchPar := branchParallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	precList, err := parsePrecisions(*precisions)
	if err != nil {
		return err
	}
	configureCompute(*computeWorkers, *workers)
	configureAttention(*unfusedAttn)
	configureBranches(*branchPar)

	batchList, err := parseInts(*batches)
	if err != nil {
		return fmt.Errorf("bad -batches: %w", err)
	}
	cfg := mmbench.SweepConfig{
		Workload:   *workload,
		Variant:    *variant,
		Devices:    strings.Split(*devices, ","),
		Batches:    batchList,
		Tasks:      *tasks,
		Precisions: precList,
		Eager:      *eager,
		Seed:       *seed,
	}

	var pool *jobs.Pool
	if *workers > 1 {
		pool = jobs.NewPool(*workers, 2*(*workers))
		defer pool.Shutdown(context.Background())
	}
	t, err := mmbench.RunSweep(cfg, mmbench.RunCached, pool)
	if err != nil {
		return err
	}
	return report.Render(os.Stdout, *format, t)
}

// parsePrecisions splits the sweep's -precision flag into individual
// policies. Policies contain commas ("head=i8,fusion=f16"), so the list
// separator is a semicolon. Each policy is validated at flag time.
func parsePrecisions(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var out []string
	for _, pol := range strings.Split(list, ";") {
		pol = strings.TrimSpace(pol)
		if err := validatePrecision(pol); err != nil {
			return nil, err
		}
		out = append(out, pol)
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive value %d", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
