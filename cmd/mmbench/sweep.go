package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mmbench"
	"mmbench/internal/report"
)

// cmdSweep profiles one workload variant across batch sizes and devices,
// emitting one row per configuration — the tuning-knob exploration the
// paper's Section 5 case studies are built from.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workload := fs.String("workload", "avmnist", "workload name")
	variant := fs.String("variant", "", "fusion method or uni:<modality>")
	devices := fs.String("devices", "2080ti,orin,nano", "comma-separated device list")
	batches := fs.String("batches", "32,64,128,256", "comma-separated batch sizes")
	tasks := fs.Int("tasks", 0, "if > 0, also report total time for this many inference tasks")
	format := fs.String("format", "text", "output format: text, csv or json")
	if err := fs.Parse(args); err != nil {
		return err
	}

	batchList, err := parseInts(*batches)
	if err != nil {
		return fmt.Errorf("bad -batches: %w", err)
	}
	devList := strings.Split(*devices, ",")

	cols := []string{"Device", "Batch", "Latency (ms)", "GPU (ms)", "CPU+Runtime", "Intermediate (MB)"}
	if *tasks > 0 {
		cols = append(cols, fmt.Sprintf("Total for %d tasks (s)", *tasks))
	}
	t := report.NewTable(fmt.Sprintf("Sweep: %s/%s", *workload, *variant), cols...)
	for _, dev := range devList {
		for _, batch := range batchList {
			rep, err := mmbench.Run(mmbench.RunConfig{
				Workload:   *workload,
				Variant:    *variant,
				Device:     strings.TrimSpace(dev),
				BatchSize:  batch,
				PaperScale: true,
			})
			if err != nil {
				return err
			}
			row := []string{
				rep.Device, strconv.Itoa(batch),
				report.Ms(rep.LatencySeconds), report.Ms(rep.GPUSeconds),
				report.Pct(rep.CPUShare), report.F(rep.Memory.Intermediate),
			}
			if *tasks > 0 {
				nBatches := float64((*tasks + batch - 1) / batch)
				row = append(row, report.F(rep.LatencySeconds*nBatches))
			}
			t.AddRow(row...)
		}
	}
	return report.Render(os.Stdout, *format, t)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive value %d", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
