package main

import "testing"

func TestParseInts(t *testing.T) {
	cases := []struct {
		name, in string
		want     []int
		wantErr  bool
	}{
		{name: "plain list", in: "32,64,128", want: []int{32, 64, 128}},
		{name: "whitespace trimmed", in: " 8 , 16 ", want: []int{8, 16}},
		{name: "single value", in: "256", want: []int{256}},
		{name: "empty string", in: "", wantErr: true},
		{name: "junk", in: "8,banana", wantErr: true},
		{name: "trailing comma", in: "8,", wantErr: true},
		{name: "zero", in: "0", wantErr: true},
		{name: "negative", in: "8,-4", wantErr: true},
		{name: "float", in: "8.5", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseInts(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parseInts(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseInts(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parseInts(%q) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("parseInts(%q) = %v, want %v", tc.in, got, tc.want)
				}
			}
		})
	}
}
