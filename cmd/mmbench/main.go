// Command mmbench is the benchmark suite's command line interface.
//
// Usage:
//
//	mmbench list                         list workloads and variants
//	mmbench devices                      list hardware profiles
//	mmbench run [flags]                  profile one workload variant
//	mmbench train [flags]                train a variant and report metric
//	mmbench repro [flags] <id>|all       regenerate a paper table/figure
//	mmbench sweep [flags]                sweep batch sizes and devices
//	mmbench place [flags]                plan stage placement across the fleet
//	mmbench serve [flags]                run the benchmark HTTP service
//	mmbench loadgen [flags]              drive a live server with seeded load
//
// Run "mmbench <command> -h" for per-command flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"mmbench"
	"mmbench/internal/engine"
	"mmbench/internal/obs"
	"mmbench/internal/ops"
	"mmbench/internal/precision"
	"mmbench/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "devices":
		err = cmdDevices()
	case "run":
		err = cmdRun(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "repro":
		err = cmdRepro(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "place":
		err = cmdPlace(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mmbench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mmbench — end-to-end multi-modal DNN benchmark suite

Commands:
  list        list workloads, modalities and variants
  devices     list hardware profiles
  run         profile one workload variant on one device
  train       train a variant on synthetic data and report its metric
  repro       regenerate a table/figure of the paper (or "all")
  sweep       profile a variant across devices and batch sizes
  place       plan stage placement across the heterogeneous fleet
  serve       run the benchmark-as-a-service HTTP API
  loadgen     drive a live server with a seeded SLO-aware load`)
}

func cmdList() error {
	t := report.NewTable("MMBench workloads",
		"Workload", "Domain", "Task", "Size", "Modalities", "Variants")
	for _, w := range mmbench.Workloads() {
		t.AddRow(w.Name, w.Domain, w.Task, w.ModelSize,
			strings.Join(w.Modalities, ","), strings.Join(w.Variants, ","))
	}
	return t.WriteText(os.Stdout)
}

func cmdDevices() error {
	for _, d := range mmbench.Devices() {
		fmt.Println(d)
	}
	return nil
}

// computeWorkersFlag registers the -compute-workers flag shared by every
// command that executes eager kernels.
func computeWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("compute-workers", 0,
		"compute-engine workers for eager kernels (0 = auto: GOMAXPROCS split across job workers)")
}

// unfusedAttentionFlag registers the -unfused-attention flag shared by
// every command that executes attention layers.
func unfusedAttentionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("unfused-attention", false,
		"use the unfused reference attention composition instead of the fused streaming-softmax kernel (slower, materializes the score matrix)")
}

// branchParallelFlag registers the -branch-parallel flag shared by
// every command that runs multi-modal networks.
func branchParallelFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("branch-parallel", true,
		"run per-modality encoder branches concurrently (bitwise identical to the sequential reference; the engine worker budget is split across branches)")
}

// precisionFlag registers the -precision flag shared by every command
// that executes (or models) network stages.
func precisionFlag(fs *flag.FlagSet) *string {
	return fs.String("precision", "",
		"per-stage storage-precision policy: f32|f16|i8, or stage=precision assignments over encoder[:modality], fusion, head (e.g. head=i8,fusion=f16); empty = all f32")
}

// validatePrecision rejects unparseable policies at flag time so the
// error names the flag instead of surfacing later from a job worker.
func validatePrecision(pol string) error {
	if _, err := precision.ParsePolicy(pol); err != nil {
		return fmt.Errorf("bad -precision: %w", err)
	}
	return nil
}

// computeWorkerBudget resolves the per-job compute worker count. A
// positive request wins; otherwise the budget is GOMAXPROCS divided by
// the command's job-level workers, clamped to at least 1 — without the
// clamp, more job workers than CPUs floors the division to 0, and
// engine worker count 0 means "auto = full GOMAXPROCS" per job: the
// exact oversubscription the auto mode exists to prevent.
func computeWorkerBudget(requested, jobWorkers int) int {
	if requested > 0 {
		return requested
	}
	if jobWorkers < 1 {
		jobWorkers = 1
	}
	w := runtime.GOMAXPROCS(0) / jobWorkers
	if w < 1 {
		w = 1
	}
	return w
}

// configureCompute sets the default compute engine's worker count so
// scheduler parallelism × kernel parallelism never oversubscribes the
// machine. Worker count never changes results.
func configureCompute(computeWorkers, jobWorkers int) {
	engine.SetDefaultWorkers(computeWorkerBudget(computeWorkers, jobWorkers))
}

// configureAttention sets the process-wide attention-path default from
// the -unfused-attention flag.
func configureAttention(unfused bool) {
	ops.SetDefaultUnfusedAttention(unfused)
}

// configureBranches sets the process-wide branch-schedule default from
// the -branch-parallel flag.
func configureBranches(parallel bool) {
	ops.SetDefaultSequentialBranches(!parallel)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workload := fs.String("workload", "avmnist", "workload name (see list)")
	variant := fs.String("variant", "", "fusion method or uni:<modality> (default: workload's first fusion)")
	dev := fs.String("device", "2080ti", "device profile: 2080ti, nano or orin")
	batch := fs.Int("batch", 32, "batch size")
	paper := fs.Bool("paper", true, "use the paper-scale profile flavour")
	eager := fs.Bool("eager", false, "execute real numerics instead of the analytic abstraction")
	format := fs.String("format", "text", "output format: text, csv or json")
	computeWorkers := computeWorkersFlag(fs)
	unfusedAttn := unfusedAttentionFlag(fs)
	branchPar := branchParallelFlag(fs)
	precPolicy := precisionFlag(fs)
	seed := fs.Int64("seed", 0, "eager-mode data seed (0 = suite default)")
	traceOut := traceOutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validatePrecision(*precPolicy); err != nil {
		return err
	}
	if *traceOut != "" && !*eager {
		return fmt.Errorf("-trace-out requires -eager: analytic runs execute no kernels to time")
	}
	configureCompute(*computeWorkers, 1)
	configureAttention(*unfusedAttn)
	configureBranches(*branchPar)
	cfg := mmbench.RunConfig{
		Workload:   *workload,
		Variant:    *variant,
		Device:     *dev,
		BatchSize:  *batch,
		PaperScale: *paper,
		Eager:      *eager,
		Seed:       *seed,
		Precision:  *precPolicy,
	}
	if *traceOut == "" {
		rep, err := mmbench.Run(cfg)
		if err != nil {
			return err
		}
		return renderReport(rep, *format)
	}
	prof := obs.NewProfiler()
	prof.CaptureEngineTasks()
	rep, stageMs, err := mmbench.RunWithProfiler(cfg, prof)
	if err != nil {
		prof.Finish()
		return err
	}
	if err := writeChromeTrace(*traceOut, prof.Finish()); err != nil {
		return err
	}
	if err := renderReport(rep, *format); err != nil {
		return err
	}
	printStageLatency(stageMs)
	return nil
}

// traceOutFlag registers the -trace-out flag shared by run and train.
func traceOutFlag(fs *flag.FlagSet) *string {
	return fs.String("trace-out", "",
		"write a Chrome trace-event JSON file of the measured eager execution (open in Perfetto or chrome://tracing); run requires -eager")
}

// writeChromeTrace exports a sealed profile to path.
func writeChromeTrace(path string, pr *obs.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pr.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mmbench: wrote trace with %d spans to %s\n",
		len(pr.Spans)+len(pr.EngineSpans), path)
	return nil
}

// printStageLatency renders the measured per-stage wall times beside
// the (modeled) report tables.
func printStageLatency(stageMs map[string]float64) {
	if len(stageMs) == 0 {
		return
	}
	stages := make([]string, 0, len(stageMs))
	for stage := range stageMs {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	fmt.Println("Measured stage wall time (eager):")
	for _, stage := range stages {
		fmt.Printf("  %-9s %.3f ms\n", stage, stageMs[stage])
	}
}

func renderReport(r *mmbench.Report, format string) error {
	summary := report.NewTable(
		fmt.Sprintf("%s/%s on %s (batch %d)", r.Workload, r.Variant, r.Device, r.Batch),
		"Latency (ms)", "GPU (ms)", "Host (ms)", "Transfer (ms)", "CPU+Runtime", "Kernels")
	summary.AddRow(report.Ms(r.LatencySeconds), report.Ms(r.GPUSeconds), report.Ms(r.HostSeconds),
		report.Ms(r.TransferSeconds), report.Pct(r.CPUShare), fmt.Sprint(r.Kernels))

	stages := report.NewTable("Per-stage characterization",
		"Stage", "Time (ms)", "DRAM_UTI", "GPU_OCU", "GLD_EFF", "GST_EFF", "IPC")
	for _, s := range r.Stages {
		stages.AddRow(s.Stage, report.Ms(s.Seconds), report.F(s.DRAMUtil),
			report.F(s.Occupancy), report.F(s.GldEff), report.F(s.GstEff), report.F(s.IPC))
	}

	classes := report.NewTable("Kernel class breakdown", append([]string{"Stage"}, mmbench.KernelClasses()...)...)
	for _, stage := range []string{"encoder", "fusion", "head"} {
		row := []string{stage}
		for _, c := range mmbench.KernelClasses() {
			row = append(row, report.Pct(r.KernelClassShares[stage][c]))
		}
		classes.AddRow(row...)
	}

	mem := report.NewTable("Peak memory (MB)", "Model", "Dataset", "Intermediate")
	mem.AddRow(report.F(r.Memory.Model), report.F(r.Memory.Dataset), report.F(r.Memory.Intermediate))

	tables := []*report.Table{summary, stages, classes, mem}
	if r.Precision != "" {
		// Only mixed-precision runs add this table, so default output
		// stays byte-identical to the pre-mixed-precision CLI.
		prec := report.NewTable("Mixed precision",
			"Policy", "Max |err| vs f32", "Mean |err| vs f32")
		errMax, errMean := "-", "-"
		if r.OutputErrMax != 0 || r.OutputErrMean != 0 {
			errMax, errMean = report.F(r.OutputErrMax), report.F(r.OutputErrMean)
		}
		prec.AddRow(r.Precision, errMax, errMean)
		prec.Note = "error columns are measured only for -eager runs (analytic runs model the precision's kernel costs without numerics)"
		tables = append(tables, prec)
	}

	return report.Render(os.Stdout, format, tables...)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	workload := fs.String("workload", "avmnist", "workload name")
	variant := fs.String("variant", "", "fusion method or uni:<modality>")
	epochs := fs.Int("epochs", 0, "training epochs (0 = suite default)")
	lr := fs.Float64("lr", 0, "learning rate (0 = suite default)")
	seed := fs.Int64("seed", 1, "data seed")
	computeWorkers := computeWorkersFlag(fs)
	unfusedAttn := unfusedAttentionFlag(fs)
	branchPar := branchParallelFlag(fs)
	precPolicy := precisionFlag(fs)
	traceOut := traceOutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validatePrecision(*precPolicy); err != nil {
		return err
	}
	configureCompute(*computeWorkers, 1)
	configureAttention(*unfusedAttn)
	configureBranches(*branchPar)
	var prof *obs.Profiler
	if *traceOut != "" {
		prof = obs.NewProfiler()
		prof.CaptureEngineTasks()
	}
	res, err := mmbench.Train(mmbench.TrainConfig{
		Workload:  *workload,
		Variant:   *variant,
		Epochs:    *epochs,
		LR:        *lr,
		Seed:      *seed,
		Precision: *precPolicy,
		Profiler:  prof,
	})
	if err != nil {
		if prof != nil {
			prof.Finish()
		}
		return err
	}
	if prof != nil {
		if err := writeChromeTrace(*traceOut, prof.Finish()); err != nil {
			return err
		}
	}
	fmt.Printf("%s/%s: %s = %.3f (final loss %.3f)\n",
		res.Workload, res.Variant, res.MetricName, res.Metric, res.FinalLoss)
	return nil
}

func cmdRepro(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ExitOnError)
	quick := fs.Bool("quick", false, "shrink training runs and sweeps")
	format := fs.String("format", "text", "output format: text, csv or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("repro needs experiment ids (one of %v, or all)", mmbench.ExperimentIDs())
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = mmbench.ExperimentIDs()
	}
	for _, id := range ids {
		tables, err := mmbench.Experiment(id, *quick)
		if err != nil {
			return err
		}
		if err := report.Render(os.Stdout, *format, tables...); err != nil {
			return err
		}
	}
	return nil
}
