package mmbench

import (
	"fmt"

	"mmbench/internal/device"
	"mmbench/internal/place"
	"mmbench/internal/plan"
	"mmbench/internal/precision"
	"mmbench/internal/workloads"
)

// PlaceConfig selects a fleet-placement search: which workload's stage
// plan to place across the built-in heterogeneous fleet, under which
// latency SLO and precision menu.
type PlaceConfig struct {
	// Workload and Variant name the network (see Workloads).
	Workload string
	Variant  string
	// Batch defaults to 32 (the runner's default).
	Batch int
	// Paper selects paper-scale models (default true, like RunConfig).
	Paper *bool
	// SLOMs is the latency objective in milliseconds; 0 disables the
	// feasibility filter.
	SLOMs float64
	// Precisions restricts the per-stage storage precisions the search
	// may assign ("f32", "f16", "i8"); empty allows all three.
	Precisions []string
	// Top caps the returned frontier (default 12).
	Top int
}

// PlanNode summarizes one stage node of the compiled plan.
type PlanNode struct {
	Key         string `json:"key"`
	Kernels     int    `json:"kernels"`
	FLOPs       int64  `json:"flops"`
	ParamBytes  int64  `json:"param_bytes"`
	OutBytes    int64  `json:"out_bytes"`
	KernelBytes int64  `json:"kernel_bytes"`
}

// PlanEdge summarizes one inter-stage activation edge.
type PlanEdge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Bytes int64  `json:"bytes"`
}

// PlaceReport is the outcome of one fleet-placement search.
type PlaceReport struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Network  string  `json:"network"`
	Batch    int     `json:"batch"`
	SLOMs    float64 `json:"slo_ms,omitempty"`
	// Nodes and Edges describe the compiled stage plan the search
	// placed.
	Nodes []PlanNode `json:"nodes"`
	Edges []PlanEdge `json:"edges"`
	// Frontier, Baselines and the counters come from the planner (see
	// place.Result).
	Frontier     []place.Candidate `json:"frontier"`
	Baselines    []place.Candidate `json:"baselines"`
	Evaluated    int               `json:"evaluated"`
	Feasible     int               `json:"feasible"`
	MinLatencyMs float64           `json:"min_latency_ms"`
}

// Fleet returns the built-in heterogeneous fleet topology (devices and
// interconnect links) the placement planner searches over.
func Fleet() *device.Fleet { return device.DefaultFleet() }

// Place compiles the workload's stage plan and searches stage→device
// placements (with per-stage precision) across the built-in fleet.
func Place(cfg PlaceConfig) (*PlaceReport, error) {
	if cfg.Workload == "" {
		return nil, fmt.Errorf("mmbench: place needs a workload")
	}
	paper := true
	if cfg.Paper != nil {
		paper = *cfg.Paper
	}
	if cfg.Variant == "" {
		info, err := workloads.Get(cfg.Workload)
		if err != nil {
			return nil, err
		}
		cfg.Variant = info.Fusions[0]
	}
	n, err := workloads.Build(cfg.Workload, cfg.Variant, paper, 42)
	if err != nil {
		return nil, err
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 32
	}
	var precs []precision.Type
	for _, s := range cfg.Precisions {
		t, ok := precision.ParseType(s)
		if !ok {
			return nil, fmt.Errorf("mmbench: unknown precision %q (want f32, f16 or i8)", s)
		}
		precs = append(precs, t)
	}

	fleet := device.DefaultFleet()
	m, err := place.NewModel(fleet, n, batch, nil)
	if err != nil {
		return nil, err
	}
	res := m.Search(place.Options{SLOMs: cfg.SLOMs, Precisions: precs, Top: cfg.Top})

	rep := &PlaceReport{
		Workload:     cfg.Workload,
		Variant:      cfg.Variant,
		Network:      n.Name,
		Batch:        batch,
		SLOMs:        cfg.SLOMs,
		Frontier:     res.Frontier,
		Baselines:    res.Baselines,
		Evaluated:    res.Evaluated,
		Feasible:     res.Feasible,
		MinLatencyMs: res.MinLatencyMs,
	}
	rep.Nodes, rep.Edges = summarizePlan(m.Plan)
	return rep, nil
}

// summarizePlan converts the plan DAG into the report's node/edge
// summaries.
func summarizePlan(p *plan.Plan) ([]PlanNode, []PlanEdge) {
	nodes := make([]PlanNode, len(p.Nodes))
	for i, nd := range p.Nodes {
		nodes[i] = PlanNode{
			Key: nd.Key, Kernels: nd.Kernels, FLOPs: nd.FLOPs,
			ParamBytes: nd.ParamBytes, OutBytes: nd.OutBytes,
			KernelBytes: nd.KernelBytes,
		}
	}
	edges := make([]PlanEdge, len(p.Edges))
	for i, e := range p.Edges {
		edges[i] = PlanEdge{From: p.Nodes[e.From].Key, To: p.Nodes[e.To].Key, Bytes: e.Bytes}
	}
	return nodes, edges
}
