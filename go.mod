module mmbench

go 1.24
